// Package culzss's root benchmark suite maps one testing.B benchmark to
// every table and figure of the paper's evaluation (§IV), plus the §III.D
// ablations. Run with:
//
//	go test -bench=. -benchmem
//
// Conventions: wall-clock ns/op is the host cost of running the system
// (for the CULZSS kernels that is the cost of simulating them); the
// paper-relevant numbers are attached as custom metrics:
//
//	sim-ms     simulated GTX 480 end-to-end milliseconds (GPU systems)
//	sat-ms     the same with the device saturated (size-independent)
//	ratio-%    compression ratio, Table II's metric
//	speedup-x  speed-up over the serial baseline, Figure 4's metric
//
// The benchmark input is 256 KiB per dataset by default (set CULZSS_BENCH
// to e.g. "4MiB" for larger runs); EXPERIMENTS.md records a full-size run.
package culzss

import (
	"fmt"
	"os"
	"testing"
	"time"

	"culzss/internal/bzip2"
	"culzss/internal/cliutil"
	"culzss/internal/cpulzss"
	"culzss/internal/cudasim"
	"culzss/internal/datasets"
	"culzss/internal/gpu"
	"culzss/internal/lzss"
)

// benchSize returns the per-dataset input size.
func benchSize(b *testing.B) int {
	if s := os.Getenv("CULZSS_BENCH"); s != "" {
		n, err := cliutil.ParseSize(s)
		if err != nil {
			b.Fatalf("bad CULZSS_BENCH: %v", err)
		}
		return n
	}
	return 256 << 10
}

// cpuBaseline mirrors the harness: the serial/pthread baselines share the
// CULZSS window configuration (see internal/harness).
var cpuBaseline = lzss.Config{Window: 128, MaxMatch: 18, MinMatch: 3}

const benchSeed = 20110926

// compressOnce runs one system over data, returning the compressed size
// and, for GPU systems, the report.
func compressOnce(b *testing.B, system string, data []byte) (int, *gpu.Report) {
	b.Helper()
	switch system {
	case "SerialLZSS":
		out, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: cpuBaseline})
		if err != nil {
			b.Fatal(err)
		}
		return len(out), nil
	case "PthreadLZSS":
		out, err := cpulzss.CompressParallel(data, cpulzss.Options{Config: cpuBaseline})
		if err != nil {
			b.Fatal(err)
		}
		return len(out), nil
	case "BZIP2":
		out, err := bzip2.Compress(data, bzip2.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		return len(out), nil
	case "CULZSS_V1":
		out, rep, err := gpu.CompressV1(data, gpu.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return len(out), rep
	case "CULZSS_V2":
		out, rep, err := gpu.CompressV2(data, gpu.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return len(out), rep
	}
	b.Fatalf("unknown system %q", system)
	return 0, nil
}

var tableISystems = []string{"SerialLZSS", "PthreadLZSS", "BZIP2", "CULZSS_V1", "CULZSS_V2"}

// BenchmarkTableI regenerates Table I: compression time of all five
// systems on all five datasets.
func BenchmarkTableI(b *testing.B) {
	size := benchSize(b)
	for _, ds := range datasets.All() {
		data := ds.Gen(size, benchSeed)
		for _, system := range tableISystems {
			b.Run(ds.Key+"/"+system, func(b *testing.B) {
				b.SetBytes(int64(size))
				var rep *gpu.Report
				for i := 0; i < b.N; i++ {
					_, rep = compressOnce(b, system, data)
				}
				if rep != nil {
					b.ReportMetric(float64(rep.SimulatedTotal())/1e6, "sim-ms")
					b.ReportMetric(float64(rep.SaturatedTotal())/1e6, "sat-ms")
				}
			})
		}
	}
}

// BenchmarkTableII regenerates Table II: compression ratios (the ratio-%
// metric; smaller is better) for Serial, BZIP2, V1 and V2.
func BenchmarkTableII(b *testing.B) {
	size := benchSize(b)
	for _, ds := range datasets.All() {
		data := ds.Gen(size, benchSeed)
		for _, system := range []string{"SerialLZSS", "BZIP2", "CULZSS_V1", "CULZSS_V2"} {
			b.Run(ds.Key+"/"+system, func(b *testing.B) {
				var comp int
				for i := 0; i < b.N; i++ {
					comp, _ = compressOnce(b, system, data)
				}
				b.ReportMetric(float64(comp)/float64(size)*100, "ratio-%")
			})
		}
	}
}

// BenchmarkTableIII regenerates Table III: decompression, serial CPU vs
// the chunk-parallel CULZSS decoder, in memory.
func BenchmarkTableIII(b *testing.B) {
	size := benchSize(b)
	for _, ds := range datasets.All() {
		data := ds.Gen(size, benchSeed)
		serialCont, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: cpuBaseline, Search: lzss.SearchHashChain})
		if err != nil {
			b.Fatal(err)
		}
		gpuCont, _, err := gpu.CompressV1(data, gpu.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ds.Key+"/SerialLZSS", func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := cpulzss.Decompress(serialCont, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(ds.Key+"/CULZSS", func(b *testing.B) {
			b.SetBytes(int64(size))
			var rep *gpu.Report
			for i := 0; i < b.N; i++ {
				var err error
				if _, rep, err = gpu.Decompress(gpuCont, gpu.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.SimulatedTotal())/1e6, "sim-ms")
			b.ReportMetric(float64(rep.SaturatedTotal())/1e6, "sat-ms")
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: each system's speed-up over the
// serial LZSS baseline (speedup-x metric). The serial baseline time is
// measured once per dataset; GPU systems use the saturated simulated time
// as in EXPERIMENTS.md.
func BenchmarkFigure4(b *testing.B) {
	size := benchSize(b)
	for _, ds := range datasets.All() {
		data := ds.Gen(size, benchSeed)
		serialStart := time.Now()
		if _, err := cpulzss.CompressSerial(data, cpulzss.Options{Config: cpuBaseline}); err != nil {
			b.Fatal(err)
		}
		serialTime := time.Since(serialStart)

		for _, system := range []string{"PthreadLZSS", "BZIP2", "CULZSS_V1", "CULZSS_V2"} {
			b.Run(ds.Key+"/"+system, func(b *testing.B) {
				var basis time.Duration
				for i := 0; i < b.N; i++ {
					start := time.Now()
					_, rep := compressOnce(b, system, data)
					if rep != nil {
						basis = rep.SaturatedTotal()
					} else {
						basis = time.Since(start)
					}
				}
				b.ReportMetric(float64(serialTime)/float64(basis), "speedup-x")
			})
		}
	}
}

// BenchmarkAblationSharedMemory reproduces the §III.D claim that moving
// the V1 search buffers to shared memory bought ~30%.
func BenchmarkAblationSharedMemory(b *testing.B) {
	data := datasets.CFiles(benchSize(b), benchSeed)
	for _, cfgCase := range []struct {
		name    string
		disable bool
	}{{"shared", false}, {"global_only", true}} {
		b.Run(cfgCase.name, func(b *testing.B) {
			var rep *gpu.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = gpu.CompressV1(data, gpu.Options{DisableSharedMemory: cfgCase.disable})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Launch.KernelTime)/1e6, "kernel-ms")
		})
	}
}

// BenchmarkAblationThreadsPerBlock sweeps the block width (paper: 128 is
// best; 512 no longer fits V1's shared buffers).
func BenchmarkAblationThreadsPerBlock(b *testing.B) {
	data := datasets.CFiles(benchSize(b), benchSeed)
	for _, tpb := range []int{32, 64, 128, 256} {
		for _, version := range []string{"V1", "V2"} {
			b.Run(fmt.Sprintf("%s/tpb%d", version, tpb), func(b *testing.B) {
				var rep *gpu.Report
				for i := 0; i < b.N; i++ {
					var err error
					if version == "V1" {
						_, rep, err = gpu.CompressV1(data, gpu.Options{ThreadsPerBlock: tpb})
					} else {
						_, rep, err = gpu.CompressV2(data, gpu.Options{ThreadsPerBlock: tpb})
					}
					if err != nil {
						b.Skipf("shape does not fit the device: %v", err)
					}
				}
				b.ReportMetric(float64(rep.SaturatedTotal())/1e6, "sat-ms")
				b.ReportMetric(rep.Launch.Occupancy*100, "occupancy-%")
			})
		}
	}
}

// BenchmarkAblationWindowSize sweeps the window (paper §III.D: wider
// windows search longer but match better; 128 B is the sweet spot).
func BenchmarkAblationWindowSize(b *testing.B) {
	data := datasets.CFiles(benchSize(b), benchSeed)
	for _, window := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			cfg := lzss.CULZSSV2()
			cfg.Window = window
			var rep *gpu.Report
			var comp []byte
			for i := 0; i < b.N; i++ {
				var err error
				comp, rep, err = gpu.CompressV2(data, gpu.Options{Config: cfg})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.SaturatedTotal())/1e6, "sat-ms")
			b.ReportMetric(float64(len(comp))/float64(len(data))*100, "ratio-%")
		})
	}
}

// BenchmarkAblationBankSkew shows V2's four-character thread stagger
// against shared-memory bank conflicts on a legacy-bank device.
func BenchmarkAblationBankSkew(b *testing.B) {
	data := datasets.CFiles(benchSize(b), benchSeed)
	for _, c := range []struct {
		name        string
		legacy, off bool
	}{
		{"fermi/skew_on", false, false},
		{"fermi/skew_off", false, true},
		{"g80/skew_on", true, false},
		{"g80/skew_off", true, true},
	} {
		b.Run(c.name, func(b *testing.B) {
			dev := cudasim.FermiGTX480()
			dev.LegacyBankSemantics = c.legacy
			var rep *gpu.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = gpu.CompressV2(data, gpu.Options{Device: dev, DisableBankSkew: c.off})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Launch.KernelTime)/1e6, "kernel-ms")
			b.ReportMetric(float64(rep.Launch.SharedReplayCycles), "replay-cycles")
		})
	}
}

// BenchmarkAblationSearch is the §VII future-work extension: brute-force
// versus hash-chain matching in the serial encoder (identical output).
func BenchmarkAblationSearch(b *testing.B) {
	data := datasets.CFiles(benchSize(b), benchSeed)
	for _, c := range []struct {
		name   string
		search lzss.Search
	}{{"brute", lzss.SearchBrute}, {"hashchain", lzss.SearchHashChain}} {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := lzss.EncodeBitPacked(data, lzss.Dipperstein(), c.search, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
