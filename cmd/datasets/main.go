// Command datasets materialises the five synthetic benchmark datasets
// (§IV.B stand-ins) to disk, at any size, deterministically.
//
// Usage:
//
//	datasets -dir bench-data -size 128MB          all five at paper scale
//	datasets -only cfiles,highcomp -size 8MiB     a subset
//	datasets -list                                describe the datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"culzss/internal/cliutil"
	"culzss/internal/datasets"
	"culzss/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datasets:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datasets", flag.ContinueOnError)
	var (
		dir     = fs.String("dir", "bench-data", "output directory")
		sizeStr = fs.String("size", "8MiB", "bytes per dataset")
		seed    = fs.Int64("seed", 20110926, "generator seed")
		only    = fs.String("only", "", "comma list of dataset keys (empty = all)")
		list    = fs.Bool("list", false, "list datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, g := range datasets.All() {
			fmt.Printf("%-12s %-16s %s\n", g.Key, g.Name, g.Description)
		}
		return nil
	}
	size, err := cliutil.ParseSize(*sizeStr)
	if err != nil {
		return err
	}
	selected := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			if _, ok := datasets.ByKey(k); !ok {
				return fmt.Errorf("unknown dataset key %q (try -list)", k)
			}
			selected[k] = true
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, g := range datasets.All() {
		if len(selected) > 0 && !selected[g.Key] {
			continue
		}
		start := time.Now()
		data := g.Gen(size, *seed)
		path := filepath.Join(*dir, g.Key+".dat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%-12s %s  %s  (%v)\n", g.Key, path, stats.FormatBytes(int64(len(data))), time.Since(start).Round(time.Millisecond))
	}
	return nil
}
