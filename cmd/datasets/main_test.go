package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAll(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-size", "64KiB"}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cfiles", "demap", "dictionary", "kernel", "highcomp"} {
		fi, err := os.Stat(filepath.Join(dir, key+".dat"))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if fi.Size() != 64<<10 {
			t.Fatalf("%s: size %d", key, fi.Size())
		}
	}
}

func TestGenerateSubsetAndDeterminism(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		if err := run([]string{"-dir", dir, "-size", "32KiB", "-only", "cfiles", "-seed", "7"}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(filepath.Join(dirA, "cfiles.dat"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "cfiles.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generation not deterministic across runs")
	}
	if _, err := os.Stat(filepath.Join(dirA, "demap.dat")); err == nil {
		t.Fatal("-only generated extra datasets")
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-size", "nope"}); err == nil {
		t.Error("accepted bad size")
	}
	if err := run([]string{"-only", "marsdata"}); err == nil {
		t.Error("accepted unknown dataset")
	}
}
