// Command gobz2 compresses files into the real “.bz2” interchange format
// using the repository's from-scratch bzip2 pipeline, and decompresses
// them with the standard library's independent reader — a self-checking
// pair that demonstrates interoperability with the program the paper
// benchmarks against.
//
// Usage:
//
//	gobz2 [-level 9] file          -> file.bz2
//	gobz2 -d file.bz2 [output]     -> decompress (stdlib reader)
package main

import (
	stdbzip2 "compress/bzip2"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"culzss/internal/bzip2/bzfile"
	"culzss/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gobz2:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gobz2", flag.ContinueOnError)
	var (
		decompress = fs.Bool("d", false, "decompress a .bz2 file (stdlib reader)")
		level      = fs.Int("level", 9, "block size level 1..9 (x100 kB)")
		quiet      = fs.Bool("q", false, "no summary output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		return fmt.Errorf("expected input [output]")
	}
	in := fs.Arg(0)

	if *decompress {
		out := fs.Arg(1)
		if out == "" {
			out = strings.TrimSuffix(in, ".bz2")
			if out == in {
				out = in + ".out"
			}
		}
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		plain, err := io.ReadAll(stdbzip2.NewReader(f))
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, plain, 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("%s -> %s (%s)\n", in, out, stats.FormatBytes(int64(len(plain))))
		}
		return nil
	}

	out := fs.Arg(1)
	if out == "" {
		out = in + ".bz2"
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bzfile.Encode(of, data, *level); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	if !*quiet {
		fi, err := os.Stat(out)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s -> %s (ratio %s)\n", in,
			stats.FormatBytes(int64(len(data))), stats.FormatBytes(fi.Size()),
			stats.RatioPercent(int(fi.Size()), len(data)))
	}
	return nil
}
