package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/datasets"
)

func TestBz2RoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	data := datasets.CFiles(128<<10, 9)
	in := filepath.Join(dir, "input.c")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", in}); err != nil {
		t.Fatal(err)
	}
	comp := in + ".bz2"
	fi, err := os.Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(data)) {
		t.Fatalf("no compression: %d -> %d", len(data), fi.Size())
	}
	back := filepath.Join(dir, "back.c")
	if err := run([]string{"-q", "-d", comp, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestBz2CLIErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("accepted no args")
	}
	if err := run([]string{"-level", "12", "x"}); err == nil {
		t.Error("accepted bad level")
	}
	if err := run([]string{"/does/not/exist"}); err == nil {
		t.Error("accepted missing input")
	}
}
