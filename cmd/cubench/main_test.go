package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"culzss/internal/harness"
)

func TestFullRunSmall(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-size", "64KiB", "-reps", "1", "-q", "-serial-search", "hashchain"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Figure 4",
		"shared vs global", "threads per block", "window size",
		"bank conflicts", "search algorithm",
		"copy/execute streams", "multiple simulated GPUs",
		"heterogeneous CPU+GPU", "automatic version selection",
		"C files", "Highly Compr.", "completed in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSelectiveRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "64KiB", "-q", "-serial-search", "hashchain", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table II") {
		t.Error("missing Table II")
	}
	for _, not := range []string{"Table I —", "Table III", "Figure 4", "Ablation"} {
		if strings.Contains(s, not) {
			t.Errorf("unexpected section %q in selective run", not)
		}
	}

	out.Reset()
	if err := run([]string{"-size", "64KiB", "-q", "-ablation", "window"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window size") {
		t.Error("missing window ablation")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "banana"}, &out); err == nil {
		t.Error("accepted bad size")
	}
	if err := run([]string{"-serial-search", "quantum"}, &out); err == nil {
		t.Error("accepted bad matcher")
	}
}

func TestJSONBenchAndAgainst(t *testing.T) {
	// -json emits a parseable modeled report...
	var out bytes.Buffer
	args := []string{"-size", "64KiB", "-reps", "1", "-q", "-serial-search", "hashchain", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	rep, err := harness.ReadBenchReport(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if !rep.Config.Modeled || rep.Config.Size != 64<<10 {
		t.Fatalf("report config wrong: %+v", rep.Config)
	}
	// 5x5 compression grid plus the two Reader decode-pipeline cells and
	// the three Writer codec-routing cells.
	if len(rep.Cells) != 30 {
		t.Fatalf("report has %d cells, want the 5x5 grid + 2 decode + 3 writer cells", len(rep.Cells))
	}
	decode, writer := 0, 0
	for _, c := range rep.Cells {
		if strings.HasPrefix(c.System, "Reader ") {
			decode++
		}
		if strings.HasPrefix(c.System, "Writer ") {
			writer++
		}
	}
	if decode != 2 || writer != 3 {
		t.Fatalf("report has %d Reader / %d Writer cells, want 2 / 3", decode, writer)
	}

	// ...and -against that same report passes (the modeled basis makes
	// the rerun identical, well inside any tolerance).
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var rerun bytes.Buffer
	if err := run(append(args, "-against", baseline), &rerun); err != nil {
		t.Fatalf("self-comparison regressed: %v", err)
	}

	// A baseline claiming far faster times must fail the gate.
	for i := range rep.Cells {
		rep.Cells[i].NsPerOp /= 10
	}
	var fast bytes.Buffer
	if err := rep.WriteJSON(&fast); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, fast.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rerun.Reset()
	if err := run(append(args, "-against", baseline), &rerun); err == nil {
		t.Fatal("10x regression passed the -against gate")
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "64KiB", "-q", "-csv", "-serial-search", "hashchain", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# Table II") {
		t.Error("missing CSV title comment")
	}
	if !strings.Contains(s, ",Serial,BZIP2,V1,V2") {
		t.Errorf("missing CSV header: %q", s)
	}
	if strings.Contains(s, "completed in") {
		t.Error("CSV mode leaked the footer")
	}
}
