package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFullRunSmall(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-size", "64KiB", "-reps", "1", "-q", "-serial-search", "hashchain"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Figure 4",
		"shared vs global", "threads per block", "window size",
		"bank conflicts", "search algorithm",
		"copy/execute streams", "multiple simulated GPUs",
		"heterogeneous CPU+GPU", "automatic version selection",
		"C files", "Highly Compr.", "completed in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSelectiveRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "64KiB", "-q", "-serial-search", "hashchain", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table II") {
		t.Error("missing Table II")
	}
	for _, not := range []string{"Table I —", "Table III", "Figure 4", "Ablation"} {
		if strings.Contains(s, not) {
			t.Errorf("unexpected section %q in selective run", not)
		}
	}

	out.Reset()
	if err := run([]string{"-size", "64KiB", "-q", "-ablation", "window"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window size") {
		t.Error("missing window ablation")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "banana"}, &out); err == nil {
		t.Error("accepted bad size")
	}
	if err := run([]string{"-serial-search", "quantum"}, &out); err == nil {
		t.Error("accepted bad matcher")
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "64KiB", "-q", "-csv", "-serial-search", "hashchain", "-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# Table II") {
		t.Error("missing CSV title comment")
	}
	if !strings.Contains(s, ",Serial,BZIP2,V1,V2") {
		t.Errorf("missing CSV header: %q", s)
	}
	if strings.Contains(s, "completed in") {
		t.Error("CSV mode leaked the footer")
	}
}
