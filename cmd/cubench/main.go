// Command cubench regenerates the paper's evaluation: Tables I–III,
// Figure 4, and the §III.D ablations, over the five synthetic datasets.
//
// Usage:
//
//	cubench                                    run everything at defaults
//	cubench -size 16MiB -reps 3                the full grid, bigger input
//	cubench -table 1 -size 8MiB                only Table I
//	cubench -figure 4                          only Figure 4
//	cubench -ablation shared,tpb,window        selected ablations
//	cubench -ablation codec                    per-segment codec routing table
//	cubench -serial-search hashchain           fast serial baseline (§VII)
//	cubench -json > BENCH_10.json              machine-readable bench report
//	cubench -json -against BENCH_10.json       fail on >25% throughput regression
//
// CPU rows are wall-clock on this host; CULZSS rows are the cudasim
// GTX 480 model's simulated end-to-end times. Each GPU cell also reports
// the saturated-device time when the grid under-fills the simulated GPU
// (inputs below ~32 MiB do for V1). See EXPERIMENTS.md for the comparison
// against the paper's 128 MB numbers.
//
// -json switches to the bench-regression mode: the compression grid runs
// on the deterministic Modeled timing basis (operation counters at a
// fixed modeled clock — identical numbers on any host) and is emitted as
// JSON {dataset, system, ns_per_op, sim_ms, ratio_pct}. With -against,
// the run is additionally compared to a committed baseline report and
// the command exits non-zero when any cell's time regressed by more than
// -tolerance. CI's bench-smoke job gates on exactly this.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"culzss/internal/cliutil"
	"culzss/internal/harness"
	"culzss/internal/lzss"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubench", flag.ContinueOnError)
	var (
		sizeStr      = fs.String("size", "4MiB", "bytes per dataset (e.g. 8MiB, 128MB)")
		saturated    = fs.Bool("saturated", true, "report GPU cells at saturated-device time (see EXPERIMENTS.md)")
		reps         = fs.Int("reps", 1, "repetitions per cell (paper used 10)")
		seed         = fs.Int64("seed", 0, "dataset generator seed (0 = default)")
		workers      = fs.Int("workers", 0, "pthread-version worker count (0 = GOMAXPROCS)")
		tables       = fs.String("table", "", "comma list of tables to run: 1,2,3 (empty with no -figure/-ablation = all)")
		figures      = fs.String("figure", "", "comma list of figures: 4")
		ablations    = fs.String("ablation", "", "comma list: shared,tpb,window,bank,search,streams,multigpu,hybrid,autoselect,gpupost,devices,parse,decode,codec")
		serialSearch = fs.String("serial-search", "brute", "serial baseline matcher: brute (paper) or hashchain (§VII)")
		quiet        = fs.Bool("q", false, "suppress per-cell progress on stderr")
		asCSV        = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		asJSON       = fs.Bool("json", false, "emit a bench-regression JSON report (modeled timing basis) instead of tables")
		against      = fs.String("against", "", "baseline bench JSON to compare -json run against; exits non-zero on regression")
		tolerance    = fs.Float64("tolerance", 0.25, "relative time regression -against tolerates per cell")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	size, err := cliutil.ParseSize(*sizeStr)
	if err != nil {
		return err
	}
	cfg := harness.Config{Size: size, Reps: *reps, Seed: *seed, Workers: *workers, Saturated: *saturated}
	switch strings.ToLower(*serialSearch) {
	case "brute", "":
		cfg.SerialSearch = lzss.SearchBrute
	case "hashchain", "hash":
		cfg.SerialSearch = lzss.SearchHashChain
	default:
		return fmt.Errorf("unknown -serial-search %q", *serialSearch)
	}
	if !*quiet {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	if *asJSON || *against != "" {
		return runBench(cfg, *serialSearch, *against, *tolerance, out)
	}

	wantAll := *tables == "" && *figures == "" && *ablations == ""
	want := func(list, item string) bool {
		if wantAll {
			return true
		}
		for _, x := range strings.Split(list, ",") {
			if strings.TrimSpace(x) == item {
				return true
			}
		}
		return false
	}

	start := time.Now()
	render := func(t *harness.Table) string {
		if *asCSV {
			return t.CSV()
		}
		return t.Render()
	}
	if !*asCSV {
		fmt.Fprintf(out, "CULZSS paper reproduction — %s per dataset, %d rep(s), serial matcher: %s\n\n",
			*sizeStr, *reps, cfg.SerialSearch)
	}

	needCompressionGrid := want(*tables, "1") || want(*tables, "2") || want(*figures, "4")
	var grid *harness.Matrix
	if needCompressionGrid {
		grid, err = harness.RunCompression(cfg)
		if err != nil {
			return err
		}
	}
	if want(*tables, "1") {
		fmt.Fprintln(out, render(harness.TableI(grid)))
	}
	if want(*tables, "2") {
		fmt.Fprintln(out, render(harness.TableII(grid)))
	}
	if want(*tables, "3") {
		dm, err := harness.RunDecompression(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, render(harness.TableIII(dm)))
	}
	if want(*figures, "4") {
		fmt.Fprintln(out, render(harness.Figure4(grid)))
	}

	type ablation struct {
		key string
		run func(harness.Config) (*harness.Table, error)
	}
	for _, a := range []ablation{
		{"shared", harness.AblationSharedMemory},
		{"tpb", harness.AblationThreadsPerBlock},
		{"window", harness.AblationWindowSize},
		{"bank", harness.AblationBankSkew},
		{"search", harness.AblationSearchAlgorithm},
		{"streams", harness.ExtensionStreams},
		{"multigpu", harness.ExtensionMultiGPU},
		{"hybrid", harness.ExtensionHybrid},
		{"autoselect", harness.ExtensionAutoSelection},
		{"gpupost", harness.ExtensionGPUPostPass},
		{"devices", harness.ExtensionDeviceSweep},
		{"parse", harness.ExtensionOptimalParse},
		{"decode", harness.ExtensionParallelDecode},
		{"codec", harness.AblationCodec},
	} {
		if !want(*ablations, a.key) {
			continue
		}
		t, err := a.run(cfg)
		if err != nil {
			return fmt.Errorf("ablation %s: %w", a.key, err)
		}
		fmt.Fprintln(out, render(t))
	}

	if !*asCSV {
		fmt.Fprintf(out, "completed in %v\n", time.Since(start).Round(time.Second))
	}
	return nil
}

// runBench is the -json / -against mode: the compression grid on the
// deterministic Modeled basis, emitted as a JSON report and optionally
// gated against a committed baseline.
func runBench(cfg harness.Config, searchName, against string, tolerance float64, out io.Writer) error {
	cfg.Modeled = true
	cfg = cfg.Filled()
	m, err := harness.RunCompression(cfg)
	if err != nil {
		return err
	}
	rep := harness.BenchFromMatrix(m, harness.BenchConfig{
		Size:         cfg.Size,
		Reps:         cfg.Reps,
		Seed:         cfg.Seed,
		SerialSearch: strings.ToLower(searchName),
		Saturated:    cfg.Saturated,
		Modeled:      true,
	})
	decodeCells, err := harness.ReaderDecodeCells(cfg, []int{1, 8})
	if err != nil {
		return err
	}
	rep.Cells = append(rep.Cells, decodeCells...)
	writerCells, err := harness.WriterCodecCells(cfg, []string{"v1", "v2", "auto"})
	if err != nil {
		return err
	}
	rep.Cells = append(rep.Cells, writerCells...)
	rep.Sort()
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	if against == "" {
		return nil
	}
	f, err := os.Open(against)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := harness.ReadBenchReport(f)
	if err != nil {
		return err
	}
	if regs := rep.Compare(base, tolerance); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "cubench: REGRESSION:", r)
		}
		return fmt.Errorf("%d cell(s) regressed beyond %.0f%% vs %s", len(regs), tolerance*100, against)
	}
	fmt.Fprintf(os.Stderr, "cubench: no regression vs %s (%d cells, tolerance %.0f%%)\n",
		against, len(base.Cells), tolerance*100)
	return nil
}
