package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"culzss/internal/datasets"
)

func writeInput(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	data := datasets.CFiles(64<<10, 5)
	path := filepath.Join(dir, "input.dat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestCompressDecompressCycle(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	comp := filepath.Join(dir, "out.clz")
	back := filepath.Join(dir, "back.dat")

	if err := run([]string{"-version", "1", in, comp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-d", comp, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestDefaultOutputNames(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	if err := run([]string{"-version", "2", in}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(in + ".clz"); err != nil {
		t.Fatalf("default .clz output missing: %v", err)
	}
	// Decompressing in place strips .clz but would overwrite the input;
	// move it first.
	moved := filepath.Join(dir, "copy.clz")
	if err := os.Rename(in+".clz", moved); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-d", moved}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "copy"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestVerifyAndStatsFlags(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	if err := run([]string{"-verify", "-stats", "-version", "serial", in, filepath.Join(dir, "s.clz")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", "-stats", "-version", "parallel", in, filepath.Join(dir, "p.clz")}); err != nil {
		t.Fatal(err)
	}
}

func TestInfoFlag(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "c.clz")
	if err := run([]string{in, comp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", comp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", in}); err == nil {
		t.Fatal("-info accepted a non-container")
	}
}

func TestDumpFlag(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "c.clz")
	if err := run([]string{"-version", "1", in, comp}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dump", comp}); err != nil {
		t.Fatal(err)
	}
	// -dump only understands the CULZSS token streams.
	serial := filepath.Join(dir, "s.clz")
	if err := run([]string{"-version", "serial", in, serial}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dump", serial}); err == nil {
		t.Fatal("-dump accepted a bit-packed container")
	}
}

func TestTuningFlags(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	comp := filepath.Join(dir, "w.clz")
	if err := run([]string{"-version", "1", "-window", "64", "-tpb", "64", "-chunk", "2048", in, comp}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "wback.dat")
	if err := run([]string{"-d", comp, back}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if !bytes.Equal(got, data) {
		t.Fatal("tuned round trip mismatch")
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	cases := [][]string{
		{},                                     // no args
		{"a", "b", "c"},                        // too many args
		{"-version", "bogus", in},              // bad version
		{filepath.Join(dir, "missing"), "out"}, // missing input
		{"-version", "1", "-window", "4096", in, filepath.Join(dir, "x.clz")}, // GPU window too big
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestProfileFlag(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	if err := run([]string{"-profile", "-version", "2", in, filepath.Join(dir, "pr.clz")}); err != nil {
		t.Fatal(err)
	}
	// CPU versions report "no kernel" but still succeed.
	if err := run([]string{"-profile", "-version", "serial", in, filepath.Join(dir, "pr2.clz")}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMode(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	framed := filepath.Join(dir, "framed.clzs")
	if err := run([]string{"-stream", "-segment", "8192", "-stats", "-version", "1", in, framed}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(framed)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:4]) != "CLZS" {
		t.Fatalf("-stream did not emit a framed stream (magic %q)", raw[:4])
	}
	if len(raw) >= len(data) {
		t.Fatal("framed stream not compressed")
	}
	// -d sniffs the magic, so the same decompress path opens framed streams.
	back := filepath.Join(dir, "framed.out")
	if err := run([]string{"-d", framed, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("framed round trip failed: %v", err)
	}
	// -info understands framed streams too.
	if err := run([]string{"-info", framed}); err != nil {
		t.Fatalf("-info on framed stream: %v", err)
	}
}

// The -codec flag routes stream segments by registry name; the sniffing
// decompress path reads adaptive and raw-store streams back unchanged.
func TestStreamCodecFlag(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	for _, name := range []string{"auto", "raw"} {
		out := filepath.Join(dir, name+".clzs")
		if err := run([]string{"-stream", "-segment", "8192", "-codec", name, in, out}); err != nil {
			t.Fatalf("-codec %s: %v", name, err)
		}
		back := filepath.Join(dir, name+".out")
		if err := run([]string{"-d", out, back}); err != nil {
			t.Fatalf("-codec %s decode: %v", name, err)
		}
		if got, err := os.ReadFile(back); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("-codec %s round trip failed: %v", name, err)
		}
	}
	if err := run([]string{"-stream", "-codec", "banana", in, filepath.Join(dir, "x.clzs")}); err == nil {
		t.Fatal("unknown -codec name accepted")
	}
}

func TestStreamModePipes(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	inFile, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer inFile.Close()
	outPath := filepath.Join(dir, "piped.clzs")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inFile, outFile
	err = run([]string{"-stream", "-version", "serial", "-", "-"})
	os.Stdin, os.Stdout = oldIn, oldOut
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Decompress the framed stream back through stdin/stdout.
	cIn, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cIn.Close()
	backPath := filepath.Join(dir, "piped.out")
	backFile, err := os.Create(backPath)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin, os.Stdout = cIn, backFile
	err = run([]string{"-d", "-", "-"})
	os.Stdin, os.Stdout = oldIn, oldOut
	backFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(backPath)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("piped framed round trip failed: %v", err)
	}
}

func TestPipeModePaths(t *testing.T) {
	// Exercise "-" handling through temp-file stdin/stdout redirection.
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	inFile, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer inFile.Close()
	outPath := filepath.Join(dir, "piped.clz")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inFile, outFile
	err = run([]string{"-version", "1", "-", "-"})
	os.Stdin, os.Stdout = oldIn, oldOut
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "piped.out")
	if err := run([]string{"-d", outPath, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("pipe round trip failed: %v", err)
	}
}

// damageStream compresses data as a framed stream, applies corrupt to the
// stream bytes, and writes the result to a new file in dir.
func damageStream(t *testing.T, dir string, in string, segment int, corrupt func([]byte) []byte) string {
	t.Helper()
	framed := filepath.Join(dir, "framed.clzs")
	if err := run([]string{"-stream", "-version", "serial", "-segment", itoa(segment), in, framed}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(framed)
	if err != nil {
		t.Fatal(err)
	}
	damaged := filepath.Join(dir, "damaged.clzs")
	if err := os.WriteFile(damaged, corrupt(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return damaged
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// TestSalvageFlag: a mid-stream bit flip fails a strict decode with the
// corrupt exit code, while -salvage recovers every segment but the
// damaged one and still signals the damage.
func TestSalvageFlag(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	const segment = 16 << 10
	damaged := damageStream(t, dir, in, segment, func(raw []byte) []byte {
		raw[len(raw)/2] ^= 0x40 // inside some segment's container
		return raw
	})

	// Strict decode refuses the stream and classifies it as corrupt.
	strictOut := filepath.Join(dir, "strict.dat")
	err := run([]string{"-d", damaged, strictOut})
	if err == nil {
		t.Fatal("strict decode of damaged stream succeeded")
	}
	if code := exitCode(err); code != exitCorrupt {
		t.Fatalf("strict decode: exit code %d, want %d (err: %v)", code, exitCorrupt, err)
	}

	// Salvage decode writes the intact segments and still fails loudly.
	salvOut := filepath.Join(dir, "salvaged.dat")
	err = run([]string{"-d", "-salvage", damaged, salvOut})
	if err == nil {
		t.Fatal("salvage decode reported success for a damaged stream")
	}
	if code := exitCode(err); code != exitCorrupt {
		t.Fatalf("salvage decode: exit code %d, want %d (err: %v)", code, exitCorrupt, err)
	}
	got, rerr := os.ReadFile(salvOut)
	if rerr != nil {
		t.Fatal(rerr)
	}
	// Exactly one segment should be missing: the recovered stream must
	// equal the original with one whole segment excised.
	if bytes.Equal(got, data) {
		t.Fatal("salvage claims damage but recovered everything")
	}
	found := false
	for off := 0; off < len(data); off += segment {
		end := off + segment
		if end > len(data) {
			end = len(data)
		}
		without := append(append([]byte{}, data[:off]...), data[end:]...)
		if bytes.Equal(got, without) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("salvaged output (%d bytes) is not the original (%d bytes) minus one segment",
			len(got), len(data))
	}
}

// TestExitCodeTruncated: a stream cut short is classified as truncated,
// and salvage still recovers every complete segment.
func TestExitCodeTruncated(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	const segment = 16 << 10
	damaged := damageStream(t, dir, in, segment, func(raw []byte) []byte {
		return raw[:len(raw)-5] // cuts into the trailer (9 bytes), leaving every segment intact
	})

	strictOut := filepath.Join(dir, "strict.dat")
	err := run([]string{"-d", damaged, strictOut})
	if err == nil {
		t.Fatal("strict decode of truncated stream succeeded")
	}
	if code := exitCode(err); code != exitTruncated {
		t.Fatalf("strict decode: exit code %d, want %d (err: %v)", code, exitTruncated, err)
	}

	salvOut := filepath.Join(dir, "salvaged.dat")
	err = run([]string{"-d", "-salvage", damaged, salvOut})
	if err == nil {
		t.Fatal("salvage decode reported success for a truncated stream")
	}
	if code := exitCode(err); code != exitTruncated {
		t.Fatalf("salvage decode: exit code %d, want %d (err: %v)", code, exitTruncated, err)
	}
	got, rerr := os.ReadFile(salvOut)
	if rerr != nil {
		t.Fatal(rerr)
	}
	// Only the trailer was lost; every segment should be intact.
	if !bytes.Equal(got, data) {
		t.Fatalf("salvage of trailer-truncated stream recovered %d bytes, want all %d", len(got), len(data))
	}
}

// TestExitCodeGeneric: non-format failures stay on the generic exit code.
func TestExitCodeGeneric(t *testing.T) {
	err := run([]string{filepath.Join(t.TempDir(), "missing"), "out"})
	if err == nil {
		t.Fatal("expected error for missing input")
	}
	if code := exitCode(err); code != exitGeneric {
		t.Fatalf("exit code %d, want %d", code, exitGeneric)
	}
}

// parityStream compresses in with -stream -parity and returns the path
// plus the raw stream bytes.
func parityStream(t *testing.T, dir, in string, segment int, parity string) (string, []byte) {
	t.Helper()
	framed := filepath.Join(dir, "parity.clzs")
	if err := run([]string{"-stream", "-version", "serial", "-segment", itoa(segment),
		"-parity", parity, in, framed}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(framed)
	if err != nil {
		t.Fatal(err)
	}
	return framed, raw
}

// TestParityFlagRepairs: a -parity stream with a mid-stream bit flip is
// decoded completely by -d -salvage — the damage heals from parity and
// the run exits 0, unlike the parity-less TestSalvageFlag case.
func TestParityFlagRepairs(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	const segment = 16 << 10
	framed, raw := parityStream(t, dir, in, segment, "2+1")

	// Clean round trip first, parity absorbed transparently.
	cleanOut := filepath.Join(dir, "clean.dat")
	if err := run([]string{"-d", framed, cleanOut}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(cleanOut); !bytes.Equal(got, data) {
		t.Fatal("clean parity stream round trip mismatch")
	}

	damaged := filepath.Join(dir, "damaged.clzs")
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(damaged, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict decode still refuses the damage.
	if err := run([]string{"-d", damaged, filepath.Join(dir, "strict.dat")}); err == nil {
		t.Fatal("strict decode of damaged stream succeeded")
	}

	// -salvage heals it: complete output, exit 0.
	healedOut := filepath.Join(dir, "healed.dat")
	if err := run([]string{"-d", "-salvage", "-stats", damaged, healedOut}); err != nil {
		t.Fatalf("salvage of a repairable stream failed: %v", err)
	}
	got, err := os.ReadFile(healedOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("healed output differs from the original")
	}
}

// TestParityFlagBeyondCapacity: losses past the parity budget still exit
// nonzero with the corrupt classification.
func TestParityFlagBeyondCapacity(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	const segment = 16 << 10
	_, raw := parityStream(t, dir, in, segment, "2+1")

	// Smear a wide mid-stream region: more than one frame of a 2+1 group
	// dies, which is past what a single parity shard can rebuild.
	for i := len(raw) / 4; i < len(raw)/2; i++ {
		raw[i] ^= 0x5a
	}
	damaged := filepath.Join(dir, "damaged.clzs")
	if err := os.WriteFile(damaged, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "partial.dat")
	err := run([]string{"-d", "-salvage", damaged, out})
	if err == nil {
		t.Fatal("salvage reported success past the parity budget")
	}
	if code := exitCode(err); code != exitCorrupt {
		t.Fatalf("exit code %d, want %d (err: %v)", code, exitCorrupt, err)
	}
	if got, _ := os.ReadFile(out); len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("salvaged %d bytes of %d; want a strict non-empty subset", len(got), len(data))
	}
}

func TestParityFlagValidation(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	out := filepath.Join(dir, "out.clzs")
	for _, bad := range [][]string{
		{"-stream", "-parity", "nope", in, out},
		{"-stream", "-parity", "0+1", in, out},
		{"-stream", "-parity", "4+0", in, out},
		{"-stream", "-parity", "9999+1", in, out},
		{"-parity", "4+2", in, out},                   // needs -stream/-resume
		{"-d", "-salvage", "-parity", "4+2", in, out}, // decompression
	} {
		if err := run(bad); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}

// TestParityResumeFlag: -resume -parity continues an interrupted parity
// stream and the finished file decodes cleanly.
func TestParityResumeFlag(t *testing.T) {
	dir := t.TempDir()
	in, data := writeInput(t, dir)
	out := filepath.Join(dir, "out.clzs")
	const segment = 16 << 10

	// A full durable run with parity (no interruption).
	if err := run([]string{"-resume", "-version", "serial", "-segment", itoa(segment),
		"-parity", "2+1", in, out}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.dat")
	if err := run([]string{"-d", out, back}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(back); !bytes.Equal(got, data) {
		t.Fatal("durable parity stream round trip mismatch")
	}
}
