package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"culzss/internal/core"
	"culzss/internal/datasets"
	"culzss/internal/durable"
	"culzss/internal/faults"
)

// listEntries returns the directory's entry names, for asserting that no
// temp or partial files leak.
func listEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestDecompressFailureLeavesNoDestination(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.clzs")
	if err := run([]string{"-stream", "-version", "1", "-segment", "8192", in, comp}); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-frame: decompression must fail with the
	// truncation exit code and leave neither destination nor temp files.
	stream, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.clzs")
	if err := os.WriteFile(cut, stream[:len(stream)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "restored.dat")
	err = run([]string{"-d", cut, dst})
	if err == nil {
		t.Fatal("decompressing a truncated stream succeeded")
	}
	if code := exitCode(err); code != exitTruncated {
		t.Fatalf("exit code = %d, want %d (truncated): %v", code, exitTruncated, err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("truncated destination left behind: %v", err)
	}
	for _, name := range listEntries(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Fatalf("temp file leaked: %s", name)
		}
	}
}

func TestCorruptInputExitCode(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.clz")
	if err := run([]string{"-version", "1", in, comp}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(comp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "restored.dat")
	err = run([]string{"-d", comp, dst})
	if err == nil {
		t.Fatal("decompressing a corrupt container succeeded")
	}
	if code := exitCode(err); code != exitCorrupt {
		t.Fatalf("exit code = %d, want %d (corrupt): %v", code, exitCorrupt, err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("corrupt decode left a destination file")
	}
}

func TestCompressOutputIsAtomicOnOverwrite(t *testing.T) {
	// A failed decompress run must leave a pre-existing destination
	// untouched, not truncated.
	dir := t.TempDir()
	dst := filepath.Join(dir, "restored.dat")
	previous := []byte("previous content that must survive")
	if err := os.WriteFile(dst, previous, 0o644); err != nil {
		t.Fatal(err)
	}
	bogus := filepath.Join(dir, "bogus.clzs")
	if err := os.WriteFile(bogus, []byte("CLZS\x01\x00 nonsense tail"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-d", bogus, dst}); err == nil {
		t.Fatal("bogus input decoded")
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, previous) {
		t.Fatal("failed run clobbered the existing destination")
	}
}

func TestResumeCLI(t *testing.T) {
	dir := t.TempDir()
	input := datasets.CFiles(64<<10, 5)
	in := filepath.Join(dir, "input.dat")
	if err := os.WriteFile(in, input, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.clzs")

	// Interrupt a durable run mid-stream with a torn write, the way a
	// crashed `culzss -resume` would leave the file system.
	p := core.Params{Version: core.Version1, Injector: faults.New(7).TornWriteAt(20 << 10)}
	w, err := durable.Create(out, p, durable.Options{Stream: core.StreamOptions{SegmentSize: 8192}})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := w.Write(input)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("injected crash never surfaced")
	}
	if _, err := os.Stat(durable.PartialPath(out)); err != nil {
		t.Fatalf("partial missing after crash: %v", err)
	}

	// The real CLI picks the partial up and completes the stream.
	if err := run([]string{"-resume", "-version", "1", "-segment", "8192", in, out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(durable.PartialPath(out)); !os.IsNotExist(err) {
		t.Fatal("partial survived a completed resume")
	}

	// And the result must equal an uninterrupted run.
	ref := filepath.Join(dir, "ref.clzs")
	if err := run([]string{"-stream", "-version", "1", "-segment", "8192", in, ref}); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed CLI output differs from uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}
	back := filepath.Join(dir, "back.dat")
	if err := run([]string{"-d", out, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("decoded output differs from input")
	}
}

func TestResumeFlagValidation(t *testing.T) {
	if err := run([]string{"-resume", "-d", "x", "y"}); err == nil {
		t.Fatal("-resume -d accepted")
	}
	if err := run([]string{"-resume", "-", "-"}); err == nil {
		t.Fatal("-resume to stdout accepted")
	}
}

func TestResumeFreshRunCompresses(t *testing.T) {
	// -resume with no existing partial is just a durable fresh run.
	dir := t.TempDir()
	in, input := writeInput(t, dir)
	out := filepath.Join(dir, "out.clzs")
	if err := run([]string{"-resume", "-version", "1", "-segment", "8192", "-commit-every", "2", in, out}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.dat")
	if err := run([]string{"-d", out, back}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("round trip mismatch")
	}
}
