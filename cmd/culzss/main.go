// Command culzss is the standalone compression program — the paper's
// "I/O version" (§III): it reads a file, compresses it with the selected
// CULZSS implementation, and writes the container back out; -d reverses.
//
// Usage:
//
//	culzss [flags] input [output]            compress input
//	culzss -d [flags] input.clz [output]     decompress a container
//	culzss -info input.clz                   describe a container
//
// When output is omitted, compression appends ".clz" and decompression
// strips it (or appends ".out"). "-" means stdin/stdout, so the tool
// drops into Unix pipelines: `tar c dir | culzss - - > dir.tar.clz`.
//
// -stream switches compression to the framed streaming mode: the input is
// consumed incrementally and emitted as a sequence of self-describing
// segment frames (see internal/format), so memory stays bounded at
// O(segment × workers) no matter how large the pipe is. Decompression
// sniffs the input magic, so `-d` handles framed streams and bare
// containers alike; `-info` describes both.
//
// Examples:
//
//	culzss -version 2 kernel.tar
//	culzss -version auto -stats big.dat compressed.clz
//	culzss -d compressed.clz restored.dat
//	culzss -window 64 -tpb 128 -verify data.bin
//	tar c dir | culzss -stream -segment 262144 - - | ssh host culzss -d - -
//	culzss -stream -codec v2 kernel.tar kernel.clzs # match-per-thread kernel
//	culzss -stream -codec auto mixed.dat out.clzs   # per-segment V2/V1/raw
//	culzss -d -salvage damaged.clzs recovered.dat   # skip damaged segments
//	culzss -degrade -gpu-timeout 5s -stats big.dat  # supervised GPU dispatch
//
// -degrade arms the device-health supervisor on the GPU versions: launch
// failures trip a per-device circuit breaker, the device is quarantined
// and re-probed, and when no healthy device remains the work degrades to
// the byte-identical CPU encoder instead of failing. -gpu-timeout adds a
// watchdog that cuts hung kernel dispatches at the given deadline (and
// implies -degrade). With -stats, the supervisor's counters and breaker
// logbook are printed to stderr.
//
// -metrics arms the observability registry (internal/obs) for the run and
// dumps every series in the Prometheus text exposition format to stderr
// when the tool exits — the same families README.md's "Observability"
// section documents and examples/gateway serves at /metrics.
//
// File outputs are atomic: the tool writes to a hidden temp file in the
// destination directory and renames it into place only on success, so a
// failed or interrupted run never leaves a truncated destination (stdout
// is exempt, of course). -resume goes further: compression runs through
// the crash-safe durable layer (internal/durable) — output accumulates
// in <output>.partial with frame-boundary fsyncs every -commit-every
// segments, and a rerun of the same command after a crash scans the
// partial, truncates to the last verifiable frame, and continues the
// stream instead of starting over:
//
//	culzss -resume -segment 1048576 big.dat big.clzs   # crash...
//	culzss -resume -segment 1048576 big.dat big.clzs   # ...picks up
//
// -resume implies -stream, needs a real output file (not "-"), and reads
// the input from the start on resume (the already-compressed prefix is
// skipped, so the input must be unchanged since the interrupted run).
//
// Exit codes distinguish failure classes so scripts can react: 0 success,
// 1 generic failure, 2 corrupt input (bad checksums, damaged records,
// wrong magic), 3 truncated input (the stream ends mid-record or without
// its trailer). With -salvage the tool writes every recoverable segment
// and still exits 2 or 3 so the damage is not silent.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"path/filepath"

	"culzss/internal/codec"
	"culzss/internal/core"
	"culzss/internal/durable"
	"culzss/internal/format"
	"culzss/internal/gpu"
	"culzss/internal/health"
	"culzss/internal/lzss"
	"culzss/internal/obs"
	"culzss/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "culzss:", err)
		os.Exit(exitCode(err))
	}
}

// Exit codes (see package comment).
const (
	exitGeneric   = 1
	exitCorrupt   = 2
	exitTruncated = 3
)

// exitCode classifies err into the tool's exit codes. Truncation wins
// over corruption when both apply (a truncated tail is reported through a
// corrupt-segment record in salvage mode).
func exitCode(err error) int {
	if errors.Is(err, format.ErrTruncated) {
		return exitTruncated
	}
	var cse *format.CorruptSegmentError
	if errors.As(err, &cse) ||
		errors.Is(err, format.ErrCorrupt) ||
		errors.Is(err, format.ErrChecksum) ||
		errors.Is(err, format.ErrFrameChecksum) ||
		errors.Is(err, format.ErrFrameOrder) ||
		errors.Is(err, format.ErrBadMagic) ||
		errors.Is(err, format.ErrBadStreamMagic) {
		return exitCorrupt
	}
	return exitGeneric
}

func run(args []string) error {
	fs := flag.NewFlagSet("culzss", flag.ContinueOnError)
	var (
		decompress = fs.Bool("d", false, "decompress instead of compress")
		info       = fs.Bool("info", false, "describe a container and exit")
		dump       = fs.Bool("dump", false, "print token statistics of a CULZSS container and exit")
		version    = fs.String("version", "auto", "implementation: auto, 1, 2, serial, parallel")
		codecName  = fs.String("codec", "", "segment codec by registry name: v1, v2, cpu, pthread, bzip2, raw, or auto (adaptive per-segment selection); overrides -version")
		chunk      = fs.Int("chunk", 0, "chunk size in bytes (0 = version default)")
		tpb        = fs.Int("tpb", 0, "GPU threads per block (0 = 128)")
		window     = fs.Int("window", 0, "sliding window size (0 = version default)")
		maxMatch   = fs.Int("maxmatch", 0, "maximum match length (0 = version default)")
		verify     = fs.Bool("verify", false, "decompress after compressing and compare")
		showStats  = fs.Bool("stats", false, "print timing and ratio to stderr")
		profile    = fs.Bool("profile", false, "print the kernel profiler breakdown to stderr (GPU versions)")
		stream     = fs.Bool("stream", false, "framed streaming mode: bounded memory, suitable for pipes of any size")
		segment    = fs.Int("segment", 0, "segment size in bytes for -stream (0 = 1 MiB)")
		salvage    = fs.Bool("salvage", false, "with -d: best-effort decode of a damaged framed stream, repairing damaged segments from parity frames when present and skipping what cannot be healed")
		parity     = fs.String("parity", "", "with -stream or -resume: self-healing redundancy as K+M (e.g. 8+2) — after every K segment frames, M parity frames from which -d -salvage repairs up to M damaged frames per group")
		resume     = fs.Bool("resume", false, "crash-safe compression: fsync at frame boundaries into <output>.partial and continue an interrupted run (implies -stream)")
		commitEach = fs.Int("commit-every", 1, "with -resume: fsync cadence in segment frames")
		gpuTimeout = fs.Duration("gpu-timeout", 0, "watchdog deadline per GPU dispatch; a hung kernel is cut and the work degrades to the CPU encoder (implies -degrade)")
		degrade    = fs.Bool("degrade", false, "supervise the GPU path: launch failures quarantine the device and the work degrades to the byte-identical CPU encoder instead of failing")
		metricsOut = fs.Bool("metrics", false, "dump the run's metrics (Prometheus text format) to stderr when done")
		dWorkers   = fs.Int("workers", 0, "with -d on a framed stream: decode worker-pool size — that many segments decompress concurrently, delivery stays in order (0 = GOMAXPROCS)")
		dPrefetch  = fs.Int("prefetch", 0, "with -d on a framed stream: records read ahead of delivery (0 = worker count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		return fmt.Errorf("expected input [output], got %d args", fs.NArg())
	}
	in := fs.Arg(0)

	params := core.Params{
		ChunkSize:       *chunk,
		ThreadsPerBlock: *tpb,
		Window:          *window,
		MaxMatch:        *maxMatch,
	}
	switch strings.ToLower(*version) {
	case "auto":
		params.Version = core.VersionAuto
	case "1", "v1":
		params.Version = core.Version1
	case "2", "v2":
		params.Version = core.Version2
	case "serial":
		params.Version = core.VersionSerial
	case "parallel", "pthread":
		params.Version = core.VersionParallel
	default:
		return fmt.Errorf("unknown -version %q", *version)
	}
	if *gpuTimeout < 0 {
		return fmt.Errorf("-gpu-timeout must be >= 0, got %v", *gpuTimeout)
	}
	if *codecName != "" && *codecName != codec.Auto {
		if _, ok := codec.ByName(*codecName); !ok {
			return fmt.Errorf("unknown -codec %q (registered: %s, or %q)",
				*codecName, strings.Join(codec.Names(), ", "), codec.Auto)
		}
	}
	if *metricsOut {
		// Arm the observability registry and dump it on the way out —
		// success or failure, the counters describe what happened.
		params.Obs = obs.NewRegistry()
		defer func() {
			fmt.Fprintln(os.Stderr, "# culzss run metrics")
			if err := params.Obs.WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "culzss: writing metrics:", err)
			}
		}()
	}
	if *degrade || *gpuTimeout > 0 {
		// Arm the device-health supervisor: per-device circuit breakers,
		// the hung-kernel watchdog (when -gpu-timeout is set), and the
		// byte-identical CPU degrade when the pool is exhausted. The CPU
		// versions ignore the supervisor, so arming it is always safe.
		params.Health = health.NewPool(nil, 1, health.Policy{Deadline: *gpuTimeout, Obs: params.Obs})
	}

	if *info {
		return describe(in)
	}
	if *dump {
		return dumpTokens(in)
	}
	readInput := func() ([]byte, error) {
		if in == "-" {
			return io.ReadAll(os.Stdin)
		}
		return os.ReadFile(in)
	}
	writeOutput := func(path string, data []byte) error {
		if path == "-" {
			_, err := os.Stdout.Write(data)
			return err
		}
		a, err := newAtomicOutput(path)
		if err != nil {
			return err
		}
		if _, err := a.Write(data); err != nil {
			a.Abort()
			return err
		}
		return a.Close()
	}
	openInput := func() (io.ReadCloser, error) {
		if in == "-" {
			return io.NopCloser(os.Stdin), nil
		}
		return os.Open(in)
	}
	openOutput := func(path string) (io.WriteCloser, error) {
		if path == "-" {
			return nopWriteCloser{os.Stdout}, nil
		}
		return newAtomicOutput(path)
	}
	if *resume && *decompress {
		return fmt.Errorf("-resume applies to compression, not -d")
	}
	var parityCfg core.ParityConfig
	if *parity != "" {
		if *decompress {
			return fmt.Errorf("-parity applies to compression; -d -salvage uses whatever parity the stream carries")
		}
		if !*stream && !*resume {
			return fmt.Errorf("-parity needs -stream or -resume (parity frames live in framed streams)")
		}
		if n, err := fmt.Sscanf(*parity, "%d+%d", &parityCfg.K, &parityCfg.M); n != 2 || err != nil {
			return fmt.Errorf("-parity wants K+M (e.g. 8+2), got %q", *parity)
		}
		if parityCfg.K < 1 || parityCfg.K > format.MaxParityK ||
			parityCfg.M < 1 || parityCfg.M > format.MaxParityM {
			return fmt.Errorf("-parity %q out of range: K in [1,%d], M in [1,%d]",
				*parity, format.MaxParityK, format.MaxParityM)
		}
	}
	if *decompress {
		out := fs.Arg(1)
		if out == "" {
			if in == "-" {
				out = "-"
			} else {
				out = strings.TrimSuffix(in, ".clz")
				if out == in {
					out = in + ".out"
				}
			}
		}
		start := time.Now()
		// core.NewReader sniffs the input: framed streams ("CLZS") decode
		// incrementally with bounded memory, bare containers ("CLZ1") whole.
		src, err := openInput()
		if err != nil {
			return err
		}
		defer src.Close()
		// -salvage implies repair: when the stream carries parity frames,
		// damage is healed bit-identically before skip is even considered.
		ropts := core.ReaderOptions{
			Salvage:     *salvage,
			Repair:      *salvage,
			HostWorkers: *dWorkers,
			Prefetch:    *dPrefetch,
		}
		if *salvage {
			// Damage is reported as it is discovered, before the next
			// intact segment is served.
			ropts.OnCorrupt = func(cse *format.CorruptSegmentError) {
				fmt.Fprintln(os.Stderr, "culzss: salvage:", cse)
			}
			ropts.OnRepair = func(rse *format.RepairedSegmentError) {
				fmt.Fprintln(os.Stderr, "culzss: repair:", rse)
			}
		}
		r, err := core.NewReaderOptions(src, params, ropts)
		if err != nil {
			return err
		}
		// A Reader read to EOF tears its pipeline down itself; Close covers
		// the error paths that abandon the stream midway.
		defer r.Close()
		dst, err := openOutput(out)
		if err != nil {
			return err
		}
		n, err := io.Copy(dst, r)
		if err != nil {
			// Nothing usable was produced: drop the temp file so the
			// destination never appears truncated.
			abortOutput(dst)
			return err
		}
		if err := dst.Close(); err != nil {
			return err
		}
		if *showStats {
			fmt.Fprintf(os.Stderr, "decompressed %s -> %s (%s) in %v\n", in, out,
				stats.FormatBytes(n), time.Since(start).Round(time.Millisecond))
		}
		damaged, repaired := r.CorruptSegments(), r.RepairedSegments()
		if *showStats && *salvage {
			var skippedBytes int64
			for _, cse := range damaged {
				skippedBytes += cse.Skipped
			}
			fmt.Fprintf(os.Stderr, "salvage: {Repaired: %d, Skipped: %d, SkippedBytes: %s}\n",
				len(repaired), len(damaged), stats.FormatBytes(skippedBytes))
		}
		if len(repaired) > 0 && len(damaged) == 0 {
			// Every damaged region was healed bit-identically from parity:
			// the output is complete and verified, so the run succeeds —
			// the repairs were already reported on stderr above.
			fmt.Fprintf(os.Stderr, "culzss: salvage: %d damaged region(s) fully repaired from parity; output is complete\n",
				len(repaired))
		}
		if len(damaged) > 0 {
			// Every recoverable byte was written; still fail loudly so real
			// losses cannot pass unnoticed in scripts. Repaired regions do
			// not count — only damage beyond the parity's reach is a loss.
			regions, truncated := 0, false
			var skippedBytes int64
			for _, cse := range damaged {
				// A region whose cause is truncation (the cut tail, or the
				// missing-trailer marker) classifies the input as truncated;
				// anything else is in-stream corruption.
				if cse.Index == -1 || errors.Is(cse.Err, format.ErrTruncated) {
					truncated = true
				} else {
					regions++
				}
				skippedBytes += cse.Skipped
			}
			cause := error(format.ErrTruncated)
			if regions > 0 {
				cause = format.ErrCorrupt
			}
			return fmt.Errorf("salvage: recovered %s, but input had %d damaged region(s) (%s skipped, truncated: %v, %d repaired): %w",
				stats.FormatBytes(n), regions, stats.FormatBytes(skippedBytes), truncated, len(repaired), cause)
		}
		return nil
	}

	out := fs.Arg(1)
	if out == "" {
		if in == "-" {
			out = "-"
		} else {
			out = in + ".clz"
		}
	}

	if *resume {
		return compressDurable(in, out, params, *segment, *commitEach, parityCfg, *codecName, *showStats, openInput)
	}
	if *stream {
		return compressStream(in, out, params, *segment, parityCfg, *codecName, *showStats, openInput, openOutput)
	}

	data, err := readInput()
	if err != nil {
		return err
	}
	start := time.Now()
	var (
		comp   []byte
		report *gpu.Report
	)
	if *codecName != "" {
		comp, report, err = core.CompressCodec(data, *codecName, params)
	} else {
		comp, report, err = core.CompressWithReport(data, params)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := writeOutput(out, comp); err != nil {
		return err
	}
	if *verify {
		back, err := core.Decompress(comp, core.Params{})
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if string(back) != string(data) {
			return fmt.Errorf("verify: round trip mismatch")
		}
		if *showStats {
			fmt.Fprintln(os.Stderr, "verify: ok")
		}
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "%s: %s -> %s (ratio %s) in %v\n",
			in, stats.FormatBytes(int64(len(data))), stats.FormatBytes(int64(len(comp))),
			stats.RatioPercent(len(comp), len(data)), elapsed.Round(time.Millisecond))
		if report != nil {
			fmt.Fprintf(os.Stderr, "gpu model: kernel %v, h2d %v, d2h %v, host %v, simulated total %v\n",
				report.Launch.KernelTime.Round(time.Microsecond), report.H2D.Round(time.Microsecond),
				report.D2H.Round(time.Microsecond), report.HostTime.Round(time.Microsecond),
				report.SimulatedTotal().Round(time.Microsecond))
		}
		printHealth(params.Health)
	}
	if *profile {
		if report == nil {
			fmt.Fprintln(os.Stderr, "profile: CPU version, no kernel launched")
		} else {
			dev := params.Device
			if dev == nil {
				dev = core.Init().Device
			}
			fmt.Fprint(os.Stderr, report.Launch.Detail(dev))
		}
	}
	return nil
}

// printHealth reports the supervisor's counters to stderr when -degrade
// or -gpu-timeout armed a pool and -stats asked for the breakdown.
func printHealth(sup *health.Supervisor) {
	if sup == nil {
		return
	}
	snap := sup.Snapshot()
	fmt.Fprintf(os.Stderr,
		"gpu health: %d device(s), %d healthy, %d quarantined; %d redispatched, %d timed out, %d breaker open(s)\n",
		snap.Devices, snap.Healthy, snap.Quarantined, snap.Redispatched, snap.TimedOut, snap.BreakerOpens)
	for _, ev := range sup.Events() {
		fmt.Fprintf(os.Stderr, "gpu health: device %d %v -> %v (%s)\n", ev.Device, ev.From, ev.To, ev.Cause)
	}
}

// nopWriteCloser keeps stdout open across the "-" output path.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// atomicOutput accumulates the destination in a hidden temp file in the
// same directory and renames it into place on Close, so the destination
// path either holds the previous content or the complete new content —
// never a truncated mix.
type atomicOutput struct {
	f    *os.File
	path string
	done bool
}

func newAtomicOutput(path string) (*atomicOutput, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, err
	}
	// CreateTemp's 0600 is for secrets; match what os.Create would have
	// produced.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &atomicOutput{f: f, path: path}, nil
}

func (a *atomicOutput) Write(p []byte) (int, error) { return a.f.Write(p) }

// Close commits: fsync, close, rename into place.
func (a *atomicOutput) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.path)
}

// Abort discards the temp file; the destination path is untouched.
func (a *atomicOutput) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// abortOutput discards an output opened through openOutput without
// committing it (a no-op close for stdout).
func abortOutput(w io.WriteCloser) {
	if a, ok := w.(*atomicOutput); ok {
		a.Abort()
		return
	}
	_ = w.Close()
}

// countingWriter counts bytes passed through to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// compressStream runs the framed streaming mode: input is consumed
// incrementally (never fully buffered), segments compress concurrently,
// and the output is a self-describing framed stream that decompresses
// through the ordinary -d path.
func compressStream(in, out string, params core.Params, segment int, parity core.ParityConfig, codecName string, showStats bool,
	openInput func() (io.ReadCloser, error), openOutput func(string) (io.WriteCloser, error)) error {
	src, err := openInput()
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := openOutput(out)
	if err != nil {
		return err
	}
	start := time.Now()
	cw := &countingWriter{w: dst}
	w := core.NewWriterOptions(cw, params, core.StreamOptions{SegmentSize: segment, Parity: parity, Codec: codecName})
	n, err := io.Copy(w, src)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		abortOutput(dst)
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	if showStats {
		fmt.Fprintf(os.Stderr, "%s: %s -> %s framed (ratio %s) in %v\n",
			in, stats.FormatBytes(n), stats.FormatBytes(cw.n),
			stats.RatioPercent(int(cw.n), int(n)), time.Since(start).Round(time.Millisecond))
		if params.Health != nil {
			st := w.Stats()
			fmt.Fprintf(os.Stderr,
				"stream health: %d segment(s), %d retries, %d degraded, %d redispatched, %d timed out, %d breaker open(s), %d quarantined\n",
				st.Segments, st.Retries, st.Degraded, st.Redispatched, st.TimedOut, st.BreakerOpens, st.Quarantined)
		}
		printHealth(params.Health)
	}
	return nil
}

// compressDurable runs -resume: compression through the crash-safe
// durable layer. Output accumulates in durable.PartialPath(out) with
// frame-boundary fsyncs; when a partial from an interrupted run exists
// it is scanned, truncated to the last verifiable frame, and continued —
// the already-covered input prefix is skipped, so the finished file
// matches an uninterrupted run byte for byte.
func compressDurable(in, out string, params core.Params, segment, commitEvery int, parity core.ParityConfig, codecName string, showStats bool,
	openInput func() (io.ReadCloser, error)) error {
	if out == "-" {
		return fmt.Errorf("-resume needs a real output file, not stdout")
	}
	src, err := openInput()
	if err != nil {
		return err
	}
	defer src.Close()
	start := time.Now()
	opts := durable.Options{
		CommitEverySegments: commitEvery,
		Stream:              core.StreamOptions{SegmentSize: segment, Parity: parity, Codec: codecName},
	}
	var (
		w   *durable.Writer
		rep *durable.TailReport
	)
	if _, serr := os.Stat(durable.PartialPath(out)); serr == nil {
		w, rep, err = durable.Resume(out, params, opts)
	} else {
		w, err = durable.Create(out, params, opts)
	}
	if err != nil {
		return err
	}
	var resumedBytes int64
	if rep != nil {
		resumedBytes = int64(rep.TotalLen)
		fmt.Fprintf(os.Stderr, "culzss: resuming %s: %d segment(s) / %s verified, %s unverifiable tail dropped\n",
			out, rep.NextIndex, stats.FormatBytes(int64(rep.TotalLen)), stats.FormatBytes(rep.Truncated))
		if rep.Repaired > 0 {
			fmt.Fprintf(os.Stderr, "culzss: resuming %s: %d torn frame(s) rebuilt in place from parity\n",
				out, rep.Repaired)
		}
		if rep.Complete {
			// The interrupted run had already finished; Resume renamed it.
			return nil
		}
		// The surviving frames already cover this input prefix.
		if _, err := io.CopyN(io.Discard, src, resumedBytes); err != nil {
			_ = w.Abort()
			return fmt.Errorf("skipping the already-compressed input prefix: %w", err)
		}
	}
	n, err := io.Copy(w, src)
	if err != nil {
		_ = w.Abort() // keep the partial: the next -resume run continues it
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if showStats {
		st := w.Stats()
		fmt.Fprintf(os.Stderr, "%s: %s compressed durably (+%s resumed) in %v; %d segment(s) written, %d committed, %d inherited\n",
			in, stats.FormatBytes(n), stats.FormatBytes(resumedBytes),
			time.Since(start).Round(time.Millisecond), st.Segments, st.Committed, st.Resumed)
	}
	return nil
}

// describeStream walks a framed stream's records without decompressing
// payloads.
func describeStream(path string, f *os.File) error {
	fr, err := format.NewFrameReader(f)
	if err != nil {
		return err
	}
	var segments, rawTotal, compTotal int
	codecs := map[format.Codec]int{}
	for {
		frame, trailer, err := fr.Next()
		if err != nil {
			return err
		}
		if trailer != nil {
			fmt.Printf("framed stream: %s\n", path)
			fmt.Printf("segment size:  %d (nominal)\n", fr.SegmentSize)
			fmt.Printf("segments:      %d\n", segments)
			if fr.ParityK > 0 {
				fmt.Printf("parity:        %d+%d (%d parity frames)\n", fr.ParityK, fr.ParityM, fr.ParityFrames)
			}
			// Sorted by codec value: adaptive streams mix codecs, and the
			// tally must print identically run to run.
			var order []format.Codec
			for c := range codecs {
				order = append(order, c)
			}
			sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
			for _, c := range order {
				fmt.Printf("codec:         %v (%d segments)\n", c, codecs[c])
			}
			fmt.Printf("original len:  %s\n", stats.FormatBytes(int64(trailer.TotalLen)))
			fmt.Printf("framed len:    %s\n", stats.FormatBytes(int64(compTotal)))
			fmt.Printf("ratio:         %s\n", stats.RatioPercent(compTotal, rawTotal))
			fmt.Printf("checksum:      %08x\n", trailer.Checksum)
			return nil
		}
		segments++
		rawTotal += frame.RawLen
		compTotal += len(frame.Container)
		if h, _, err := format.ParseHeader(frame.Container); err == nil {
			codecs[h.Codec]++
		}
	}
}

func dumpTokens(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, off, err := format.ParseHeader(data)
	if err != nil {
		return err
	}
	switch h.Codec {
	case format.CodecCULZSSV1, format.CodecCULZSSV2:
	default:
		return fmt.Errorf("-dump understands CULZSS token streams, not %v", h.Codec)
	}
	cfg := lzss.Config{Window: h.Window, MaxMatch: h.Lookahead, MinMatch: int(h.MinMatch)}
	payload := data[off:]
	var total lzss.StreamStats
	for _, b := range h.ChunkBounds() {
		tokens, err := lzss.ParseTokensByteAligned(payload[b.CompOff:b.CompOff+b.CompLen], b.UncompLen, &cfg)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", b.Index, err)
		}
		st := lzss.AnalyzeTokens(tokens)
		total.Literals += st.Literals
		total.Matches += st.Matches
		total.MatchedBytes += st.MatchedBytes
		total.TotalLen += st.TotalLen
		total.TotalDist += st.TotalDist
		if total.MinLen == 0 || (st.MinLen > 0 && st.MinLen < total.MinLen) {
			total.MinLen = st.MinLen
		}
		if st.MaxLen > total.MaxLen {
			total.MaxLen = st.MaxLen
		}
		if total.MinDist == 0 || (st.MinDist > 0 && st.MinDist < total.MinDist) {
			total.MinDist = st.MinDist
		}
		if st.MaxDist > total.MaxDist {
			total.MaxDist = st.MaxDist
		}
		for i := range st.LengthHist {
			total.LengthHist[i] += st.LengthHist[i]
		}
	}
	fmt.Printf("container:     %s (%v, %d chunks)\n", path, h.Codec, len(h.ChunkSizes))
	fmt.Print(total)
	return nil
}

func describe(path string) error {
	// Framed streams get the frame-walking description.
	if f, err := os.Open(path); err == nil {
		var magic [4]byte
		if _, perr := io.ReadFull(f, magic[:]); perr == nil && string(magic[:]) == format.StreamMagic {
			if _, serr := f.Seek(0, io.SeekStart); serr != nil {
				f.Close()
				return serr
			}
			defer f.Close()
			return describeStream(path, f)
		}
		f.Close()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, off, err := format.ParseHeader(data)
	if err != nil {
		return err
	}
	fmt.Printf("container:     %s\n", path)
	fmt.Printf("codec:         %v\n", h.Codec)
	fmt.Printf("window:        %d\n", h.Window)
	fmt.Printf("lookahead:     %d\n", h.Lookahead)
	fmt.Printf("min match:     %d\n", h.MinMatch)
	fmt.Printf("chunk size:    %d\n", h.ChunkSize)
	fmt.Printf("chunks:        %d\n", len(h.ChunkSizes))
	fmt.Printf("original len:  %s\n", stats.FormatBytes(int64(h.OriginalLen)))
	fmt.Printf("payload len:   %s (+%d header bytes)\n", stats.FormatBytes(int64(h.PayloadLen())), off)
	fmt.Printf("ratio:         %s\n", stats.RatioPercent(h.PayloadLen()+off, h.OriginalLen))
	fmt.Printf("checksum:      %08x\n", h.Checksum)
	return nil
}
