module culzss

go 1.22
